// Package storage implements the durable record store underneath the
// author-index engine: an in-memory map of works made crash-safe by a
// write-ahead log and periodic snapshots.
//
// Every mutation is appended to the WAL before being applied, so a crash
// at any instant loses at most the in-flight operation. Batched
// mutations (PutBatch, DeleteBatch) group-commit: the whole batch is
// encoded into one WAL frame, appended and fsynced once, and applied —
// or replayed — atomically, so a torn tail can never surface half a
// batch. Compact writes a CRC-protected snapshot (atomically, via
// rename) and resets the WAL; recovery loads the newest snapshot and
// replays the WAL suffix.
//
// A Store opened with an empty directory path is purely in-memory: same
// API, no durability — useful for tests and benchmarks.
package storage

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Record-encoding and compaction latency on the process-wide registry.
// Encoding is the CPU cost a commit pays before the WAL's fsync;
// compaction is the stop-the-world snapshot rewrite.
var (
	encodeHist = obs.Default.Histogram("authdex_storage_encode_duration_seconds",
		"Latency of encoding works into WAL frames, one observation per put or batch.")
	compactHist = obs.Default.Histogram("authdex_storage_compact_duration_seconds",
		"Latency of snapshot compaction passes.")
)

// Errors reported by the package.
var (
	ErrNotFound = errors.New("storage: work not found")
	ErrClosed   = errors.New("storage: store is closed")
	ErrCorrupt  = errors.New("storage: corrupt data")
	// ErrDegraded is returned by every write once a write-path I/O
	// failure has latched the store read-only. Reads keep serving; the
	// latch clears only on reopen.
	ErrDegraded = fault.ErrDegraded
)

// WAL operation tags.
const (
	opPut      = 1
	opDelete   = 2
	opXRefAdd  = 3
	opXRefDel  = 4
	opPutBatch = 5 // work encodings, back to back until the frame ends
	opDelBatch = 6 // uvarint IDs, back to back until the frame ends
)

// batchFrameBytes caps one batch's WAL frame. A batch is exactly one
// frame — that is what makes crash recovery all-or-nothing, since a
// frame applies atomically on replay — so a batch that encodes past the
// cap is rejected outright rather than split into frames that a torn
// tail could partially surface. The cap sits under the WAL's 64 MiB
// record limit; callers with more data issue multiple batches. A var
// so tests can exercise rejection without gigabyte corpora.
var batchFrameBytes = 60 << 20

// CrossRef is a persisted "see also" reference between author headings.
type CrossRef struct {
	From, To model.Author
}

const (
	snapshotFile = "snapshot.dat"
	snapshotTmp  = "snapshot.tmp"
	walSubdir    = "wal"
	snapMagic    = "AIDXSNP1"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Store.
type Options struct {
	// WAL is passed through to the write-ahead log.
	WAL wal.Options
	// CompactEvery triggers an automatic Compact after this many logged
	// operations. Zero disables automatic compaction.
	CompactEvery int
	// FS is the filesystem seam the write path (snapshot compaction,
	// and — unless WAL.FS overrides it — the WAL) goes through. Nil
	// means the real filesystem.
	FS fault.FS
}

// Store is a durable map from WorkID to Work. All methods are safe for
// concurrent use. Returned works are deep copies; mutating them never
// affects the store.
type Store struct {
	mu sync.RWMutex

	dir    string
	log    *wal.Log // nil in memory-only mode
	fs     fault.FS
	opts   Options
	closed bool
	// degraded is the sticky read-only latch: set on the first
	// write-path I/O failure, cleared only by reopening the store.
	degraded       bool
	degradedErr    error
	degradedWrites int64 // commits failed or rejected by the latch

	works    map[model.WorkID]*model.Work
	xrefs    []CrossRef
	nextID   model.WorkID
	opsSince int // operations logged since the last snapshot
	scratch  []byte
	// interner deduplicates repeated strings (author name parts, subject
	// headings) while the snapshot and WAL are decoded during Open; it is
	// released once recovery finishes so steady-state writes pay nothing.
	interner *model.Interner

	batches     int64 // batch commits applied (PutBatch + DeleteBatch)
	fsyncsSaved int64 // WAL commits avoided by batching (N records, 1 commit)
}

// Open opens (creating if necessary) a store rooted at dir. An empty dir
// yields a volatile in-memory store.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:    dir,
		fs:     opts.FS,
		opts:   opts,
		works:  make(map[model.WorkID]*model.Work),
		nextID: 1,
	}
	if s.fs == nil {
		s.fs = fault.OS
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open: %w", err)
	}
	s.interner = model.NewInterner()
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	walDir := filepath.Join(dir, walSubdir)
	if _, err := wal.Replay(walDir, s.applyRecord); err != nil {
		return nil, fmt.Errorf("storage: replay: %w", err)
	}
	s.interner = nil
	wopts := opts.WAL
	if wopts.FS == nil {
		wopts.FS = opts.FS
	}
	log, err := wal.Open(walDir, wopts)
	if err != nil {
		return nil, err
	}
	s.log = log
	return s, nil
}

// Put stores a validated work. A zero ID is assigned the next free ID;
// an explicit ID inserts or overwrites. The assigned ID is returned.
func (s *Store) Put(w *model.Work) (model.WorkID, error) {
	return s.PutCtx(context.Background(), w)
}

// PutCtx is Put carrying a trace context: the whole store mutation is
// one "store.put" span whose WAL children (encode, fsync) attribute
// commit latency.
func (s *Store) PutCtx(ctx context.Context, w *model.Work) (model.WorkID, error) {
	ctx, span := trace.StartSpan(ctx, "store.put")
	defer span.End()
	if err := w.Validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return 0, err
	}
	clone := w.Clone()
	if clone.ID == 0 {
		clone.ID = s.nextID
	}
	if err := s.logOpCtx(ctx, s.encodePut(clone)); err != nil {
		return 0, err
	}
	s.applyPut(clone)
	if err := s.maybeCompactLocked(); err != nil {
		return 0, err
	}
	return clone.ID, nil
}

// Get returns a copy of the work stored under id.
func (s *Store) Get(id model.WorkID) (*model.Work, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w, ok := s.works[id]
	if !ok {
		return nil, false
	}
	return w.Clone(), true
}

// Delete removes the work stored under id.
func (s *Store) Delete(id model.WorkID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return err
	}
	if _, ok := s.works[id]; !ok {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	if err := s.logOp(s.encodeDelete(id)); err != nil {
		return err
	}
	delete(s.works, id)
	return s.maybeCompactLocked()
}

// PutBatch stores N validated works under one group commit: IDs are
// assigned exactly as N sequential Puts would assign them, every record
// is encoded into a single opPutBatch WAL frame, the frame is appended
// and fsynced once, and only then is the in-memory map updated. One
// frame is also the crash-atomicity unit: recovery replays the whole
// batch or none of it, so a batch that would encode past the frame cap
// (~60 MiB) is rejected — issue several batches instead. The ordering
// is encode-then-commit-then-apply: any failure — a work that does not
// validate, an oversize batch, a WAL error — leaves the store
// byte-identical to its pre-batch state, next-ID counter included. The
// assigned IDs are returned in input order.
func (s *Store) PutBatch(works []*model.Work) ([]model.WorkID, error) {
	return s.PutBatchCtx(context.Background(), works)
}

// PutBatchCtx is PutBatch carrying a trace context; the batch commit is
// one "store.put_batch" span with the record count attached.
func (s *Store) PutBatchCtx(ctx context.Context, works []*model.Work) ([]model.WorkID, error) {
	if len(works) == 0 {
		return nil, nil
	}
	ctx, span := trace.StartSpan(ctx, "store.put_batch")
	span.SetInt("records", int64(len(works)))
	defer span.End()
	for _, w := range works {
		if err := w.Validate(); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return nil, err
	}
	clones := make([]*model.Work, len(works))
	ids := make([]model.WorkID, len(works))
	next := s.nextID // tentative: committed only after the WAL accepts the batch
	for i, w := range works {
		c := w.Clone()
		if c.ID == 0 {
			c.ID = next
		}
		if c.ID >= next {
			next = c.ID + 1
		}
		clones[i] = c
		ids[i] = c.ID
	}
	if s.log != nil {
		frame, err := encodePutBatchFrame(clones)
		if err != nil {
			return nil, err
		}
		if err := s.logBatchCtx(ctx, frame, len(clones)); err != nil {
			return nil, err
		}
	}
	for _, c := range clones {
		s.applyPut(c)
	}
	s.batches++
	s.fsyncsSaved += int64(len(clones) - 1)
	return ids, s.maybeCompactLocked()
}

// ReserveBatchIDs validates a batch and assigns its IDs — exactly as
// PutBatch would: zero IDs take successive free IDs, explicit IDs keep
// theirs and advance the counter past them — committing the next-ID
// counter but writing nothing. The works are not mutated; the assigned
// IDs are returned in input order. The caller commits the batch under
// the reserved IDs via an explicit-ID PutBatch; a caller that never
// does simply leaves a gap in the ID sequence, which recovery tolerates
// (the counter rebuilds from the highest committed ID). An invalid work
// fails the reservation before the counter moves.
//
// Reserving first lets a coordinator learn every ID — and therefore
// every partition the batch touches — before the durable commit, so it
// can take its partition locks around the commit.
func (s *Store) ReserveBatchIDs(works []*model.Work) ([]model.WorkID, error) {
	if len(works) == 0 {
		return nil, nil
	}
	for _, w := range works {
		if err := w.Validate(); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return nil, err
	}
	ids := make([]model.WorkID, len(works))
	for i, w := range works {
		id := w.ID
		if id == 0 {
			id = s.nextID
		}
		if id >= s.nextID {
			s.nextID = id + 1
		}
		ids[i] = id
	}
	return ids, nil
}

// DeleteBatch removes N works under one group commit. Every ID must be
// present (duplicates in the slice are tolerated); a missing ID or a
// WAL error leaves the store unchanged.
func (s *Store) DeleteBatch(ids []model.WorkID) error {
	if len(ids) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return err
	}
	for _, id := range ids {
		if _, ok := s.works[id]; !ok {
			return fmt.Errorf("%w: id %d", ErrNotFound, id)
		}
	}
	if s.log != nil {
		payload := make([]byte, 0, 1+len(ids)*binary.MaxVarintLen64)
		payload = append(payload, opDelBatch)
		for _, id := range ids {
			payload = binary.AppendUvarint(payload, uint64(id))
		}
		if len(payload) > batchFrameBytes {
			return fmt.Errorf("storage: delete batch encodes to %d bytes, over the %d-byte frame cap; issue several batches", len(payload), batchFrameBytes)
		}
		if err := s.logBatchCtx(context.Background(), payload, len(ids)); err != nil {
			return err
		}
	}
	for _, id := range ids {
		delete(s.works, id)
	}
	s.batches++
	s.fsyncsSaved += int64(len(ids) - 1)
	return s.maybeCompactLocked()
}

// encodePutBatchFrame encodes the whole batch into one opPutBatch
// frame in a single streaming pass. Work encodings are self-delimiting,
// so the frame is just the tag followed by works back to back. A batch
// that encodes past the frame cap is an error: one frame is the
// crash-atomicity unit, and splitting would let a torn tail surface
// half a batch.
func encodePutBatchFrame(works []*model.Work) ([]byte, error) {
	start := time.Now()
	frame := []byte{opPutBatch}
	for _, w := range works {
		frame = model.AppendWork(frame, w)
	}
	encodeHist.Since(start)
	if len(frame) > batchFrameBytes {
		return nil, fmt.Errorf("storage: batch of %d works encodes to %d bytes, over the %d-byte frame cap; issue several batches", len(works), len(frame), batchFrameBytes)
	}
	return frame, nil
}

// Len returns the number of stored works.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.works)
}

// Works returns every stored work as one slice, in unspecified order —
// the bulk hand-off Open feeds to the engine's LoadAll, so a cold start
// sees the whole decoded corpus at once instead of a per-work callback
// chain. Unlike Get, the returned works are the store's own records,
// shared on the immutability contract every layer already honors: a
// stored work is never mutated in place (Put swaps in a fresh clone),
// so callers may retain the references but must treat them as
// read-only. Callers needing private copies should Clone them.
func (s *Store) Works() []*model.Work {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*model.Work, 0, len(s.works))
	for _, w := range s.works {
		out = append(out, w)
	}
	return out
}

// ForEach calls fn with a copy of every stored work, in unspecified
// order, stopping at the first error.
func (s *Store) ForEach(fn func(*model.Work) error) error {
	s.mu.RLock()
	works := make([]*model.Work, 0, len(s.works))
	for _, w := range s.works {
		works = append(works, w.Clone())
	}
	s.mu.RUnlock()
	for _, w := range works {
		if err := fn(w); err != nil {
			return err
		}
	}
	return nil
}

// AddCrossRef durably records a "see also" reference. Duplicates are
// ignored.
func (s *Store) AddCrossRef(ref CrossRef) error {
	if err := ref.From.Validate(); err != nil {
		return err
	}
	if err := ref.To.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return err
	}
	if s.findXRef(ref) >= 0 {
		return nil
	}
	if err := s.logOp(s.encodeXRef(opXRefAdd, ref)); err != nil {
		return err
	}
	s.xrefs = append(s.xrefs, ref)
	return s.maybeCompactLocked()
}

// DeleteCrossRef removes a previously recorded reference.
func (s *Store) DeleteCrossRef(ref CrossRef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return err
	}
	i := s.findXRef(ref)
	if i < 0 {
		return fmt.Errorf("%w: cross-reference %s → %s", ErrNotFound, ref.From.Display(), ref.To.Display())
	}
	if err := s.logOp(s.encodeXRef(opXRefDel, ref)); err != nil {
		return err
	}
	s.xrefs = append(s.xrefs[:i], s.xrefs[i+1:]...)
	return s.maybeCompactLocked()
}

// CrossRefs returns a copy of all recorded references.
func (s *Store) CrossRefs() []CrossRef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]CrossRef(nil), s.xrefs...)
}

func (s *Store) findXRef(ref CrossRef) int {
	for i, x := range s.xrefs {
		if x == ref {
			return i
		}
	}
	return -1
}

// Compact writes a snapshot of the current state and resets the WAL. It
// is a no-op for in-memory stores.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return err
	}
	return s.compactLocked()
}

// Stats describes the store's size on disk and in memory, plus the
// write-pipeline counters.
type Stats struct {
	Works         int
	NextID        model.WorkID
	WALBytes      int64
	SnapshotBytes int64
	InMemory      bool
	// BatchesCommitted counts group commits applied (PutBatch and
	// DeleteBatch calls that succeeded).
	BatchesCommitted int64
	// FsyncsSaved counts WAL commits avoided by batching: a committed
	// batch of N records costs one commit where the per-work path would
	// have paid N.
	FsyncsSaved int64
	// WALSyncs is the number of fsyncs the WAL actually issued. Always
	// zero for in-memory stores; under NoSync appends stop syncing but
	// segment rotation, explicit Sync and Close still count.
	WALSyncs int64
	// Degraded reports the sticky read-only latch: a write-path I/O
	// failure occurred and every write since has been rejected.
	Degraded bool
	// DegradedReason is the I/O error that latched the store, empty
	// while healthy.
	DegradedReason string
	// DegradedWrites counts commits failed or rejected by the latch,
	// the triggering commit included.
	DegradedWrites int64
}

// Stats returns current counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Works: len(s.works), NextID: s.nextID, InMemory: s.dir == "",
		BatchesCommitted: s.batches, FsyncsSaved: s.fsyncsSaved,
		Degraded: s.degraded, DegradedWrites: s.degradedWrites,
	}
	if s.degradedErr != nil {
		st.DegradedReason = s.degradedErr.Error()
	}
	if s.log != nil {
		st.WALBytes = s.log.Size()
		st.WALSyncs = s.log.Stats().Syncs
	}
	if s.dir != "" {
		if fi, err := os.Stat(filepath.Join(s.dir, snapshotFile)); err == nil {
			st.SnapshotBytes = fi.Size()
		}
	}
	return st
}

// Degraded reports whether a write-path I/O failure has latched the
// store read-only, and the error that did. Reads keep working on a
// degraded store; the latch clears only by reopening.
func (s *Store) Degraded() (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.degraded, s.degradedErr
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	if s.log != nil {
		return s.log.Close()
	}
	return nil
}

// ---- internals (callers hold s.mu) ----

// writableLocked gates every write entry point: closed stores and
// degraded stores reject up front, before any validation or encoding
// work. Rejections count toward the degraded-commit counter.
func (s *Store) writableLocked() error {
	if s.closed {
		return ErrClosed
	}
	if s.degraded {
		s.degradedWrites++
		return fmt.Errorf("%w (cause: %v)", ErrDegraded, s.degradedErr)
	}
	return nil
}

// degradeLocked latches the store read-only after a write-path I/O
// failure. The triggering commit counts as a degraded write. The latch
// is sticky for the life of the handle; reopening the store recovers
// from disk (snapshot + WAL replay) with a fresh latch.
func (s *Store) degradeLocked(err error) {
	if s.degraded {
		return
	}
	s.degraded = true
	s.degradedErr = err
	s.degradedWrites++
}

func (s *Store) logOp(payload []byte) error {
	return s.logOpCtx(context.Background(), payload)
}

func (s *Store) logOpCtx(ctx context.Context, payload []byte) error {
	if s.log == nil {
		return nil
	}
	if err := s.log.AppendCtx(ctx, payload); err != nil {
		if failed, _ := s.log.Failed(); failed {
			s.degradeLocked(err)
		}
		return err
	}
	s.opsSince++
	return nil
}

// logBatchCtx appends one batch frame, degrading the store if the WAL
// latched failed. records is how many operations the frame carries.
func (s *Store) logBatchCtx(ctx context.Context, frame []byte, records int) error {
	if s.log == nil {
		return nil
	}
	if err := s.log.AppendBatchCtx(ctx, [][]byte{frame}); err != nil {
		if failed, _ := s.log.Failed(); failed {
			s.degradeLocked(err)
		}
		return err
	}
	s.opsSince += records
	return nil
}

// maybeCompactLocked runs an automatic compaction once enough operations
// have been logged. It must be called after the triggering operation is
// applied, so the snapshot includes it. It always returns nil: the
// triggering operation is already durably committed, so a failed
// automatic compaction must not report it as failed — the failure
// degrades the store (compactLocked latches that) and surfaces through
// Degraded and Stats instead.
func (s *Store) maybeCompactLocked() error {
	if s.log != nil && s.opts.CompactEvery > 0 && s.opsSince >= s.opts.CompactEvery {
		s.compactLocked()
	}
	return nil
}

func (s *Store) encodePut(w *model.Work) []byte {
	start := time.Now()
	s.scratch = append(s.scratch[:0], opPut)
	s.scratch = model.AppendWork(s.scratch, w)
	encodeHist.Since(start)
	return s.scratch
}

func (s *Store) encodeDelete(id model.WorkID) []byte {
	s.scratch = append(s.scratch[:0], opDelete)
	s.scratch = binary.AppendUvarint(s.scratch, uint64(id))
	return s.scratch
}

func (s *Store) encodeXRef(op byte, ref CrossRef) []byte {
	s.scratch = append(s.scratch[:0], op)
	s.scratch = model.AppendAuthor(s.scratch, ref.From)
	s.scratch = model.AppendAuthor(s.scratch, ref.To)
	return s.scratch
}

func decodeXRef(p []byte) (CrossRef, error) {
	var ref CrossRef
	from, n, err := model.DecodeAuthor(p)
	if err != nil {
		return ref, err
	}
	to, _, err := model.DecodeAuthor(p[n:])
	if err != nil {
		return ref, err
	}
	ref.From, ref.To = from, to
	return ref, nil
}

func (s *Store) applyPut(w *model.Work) {
	s.works[w.ID] = w
	if w.ID >= s.nextID {
		s.nextID = w.ID + 1
	}
}

// applyRecord interprets one WAL payload during recovery.
func (s *Store) applyRecord(p []byte) error {
	if len(p) == 0 {
		return fmt.Errorf("%w: empty WAL record", ErrCorrupt)
	}
	switch p[0] {
	case opPut:
		w, _, err := model.DecodeWorkInterned(p[1:], s.interner)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		s.applyPut(w)
		return nil
	case opDelete:
		id, n := binary.Uvarint(p[1:])
		if n <= 0 {
			return fmt.Errorf("%w: bad delete record", ErrCorrupt)
		}
		delete(s.works, model.WorkID(id))
		return nil
	case opXRefAdd:
		ref, err := decodeXRef(p[1:])
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if s.findXRef(ref) < 0 {
			s.xrefs = append(s.xrefs, ref)
		}
		return nil
	case opXRefDel:
		ref, err := decodeXRef(p[1:])
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if i := s.findXRef(ref); i >= 0 {
			s.xrefs = append(s.xrefs[:i], s.xrefs[i+1:]...)
		}
		return nil
	case opPutBatch:
		// Decode the whole frame before applying anything: a batch frame
		// is atomic, so a decode failure must not leave half of it live.
		body := p[1:]
		var batch []*model.Work
		for len(body) > 0 {
			w, consumed, err := model.DecodeWorkInterned(body, s.interner)
			if err != nil {
				return fmt.Errorf("%w: batch work %d: %v", ErrCorrupt, len(batch), err)
			}
			body = body[consumed:]
			batch = append(batch, w)
		}
		for _, w := range batch {
			s.applyPut(w)
		}
		return nil
	case opDelBatch:
		body := p[1:]
		var ids []model.WorkID
		for len(body) > 0 {
			id, n := binary.Uvarint(body)
			if n <= 0 {
				return fmt.Errorf("%w: bad batch delete id", ErrCorrupt)
			}
			body = body[n:]
			ids = append(ids, model.WorkID(id))
		}
		for _, id := range ids {
			delete(s.works, id)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown WAL op %d", ErrCorrupt, p[0])
	}
}

// compactLocked writes snapshot.tmp, fsyncs, renames over snapshot.dat
// and resets the WAL. Any I/O failure degrades the store (disk that
// fails maintenance writes cannot be trusted with commits either), the
// temp file is always cleaned up, and the on-disk state stays
// recoverable: failures before the rename leave the old snapshot + full
// WAL; failures after it leave the new snapshot, over which leftover
// WAL records replay idempotently.
func (s *Store) compactLocked() error {
	if s.dir == "" || s.log == nil {
		return nil // in-memory: nothing to compact
	}
	defer compactHist.Since(time.Now())
	tmp := filepath.Join(s.dir, snapshotTmp)
	f, err := s.fs.Create(tmp)
	if err != nil {
		s.degradeLocked(err)
		return fmt.Errorf("storage: compact: %w", err)
	}
	if err := s.writeSnapshot(f); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		s.degradeLocked(err)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		s.degradeLocked(err)
		return fmt.Errorf("storage: compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		s.degradeLocked(err)
		return fmt.Errorf("storage: compact close: %w", err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		s.fs.Remove(tmp) // don't leave the orphaned temp snapshot behind
		s.degradeLocked(err)
		return fmt.Errorf("storage: compact rename: %w", err)
	}
	if err := s.syncDirLocked(); err != nil {
		s.degradeLocked(err)
		return err
	}
	if err := s.log.Reset(); err != nil {
		s.degradeLocked(err)
		return err
	}
	s.opsSince = 0
	return nil
}

// Snapshot layout: magic, then a body of
//
//	uvarint nextID
//	uvarint work count, then that many work encodings
//	uvarint cross-ref count, then that many (from, to) author pairs
//
// followed by a uint32 CRC-32C of the body.
func (s *Store) writeSnapshot(w io.Writer) error {
	body := binary.AppendUvarint(nil, uint64(s.nextID))
	body = binary.AppendUvarint(body, uint64(len(s.works)))
	for _, work := range s.works {
		body = model.AppendWork(body, work)
	}
	body = binary.AppendUvarint(body, uint64(len(s.xrefs)))
	for _, ref := range s.xrefs {
		body = model.AppendAuthor(body, ref.From)
		body = model.AppendAuthor(body, ref.To)
	}
	if _, err := w.Write([]byte(snapMagic)); err != nil {
		return fmt.Errorf("storage: snapshot write: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("storage: snapshot write: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(body, castagnoli))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("storage: snapshot write: %w", err)
	}
	return nil
}

func (s *Store) loadSnapshot() error {
	path := filepath.Join(s.dir, snapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("storage: load snapshot: %w", err)
	}
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("%w: snapshot header", ErrCorrupt)
	}
	body := data[len(snapMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != want {
		return fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	nextID, n := binary.Uvarint(body)
	if n <= 0 {
		return fmt.Errorf("%w: snapshot nextID", ErrCorrupt)
	}
	body = body[n:]
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return fmt.Errorf("%w: snapshot count", ErrCorrupt)
	}
	body = body[n:]
	for i := uint64(0); i < count; i++ {
		w, consumed, err := model.DecodeWorkInterned(body, s.interner)
		if err != nil {
			return fmt.Errorf("%w: snapshot work %d: %v", ErrCorrupt, i, err)
		}
		body = body[consumed:]
		s.works[w.ID] = w
	}
	xrefCount, n := binary.Uvarint(body)
	if n <= 0 {
		return fmt.Errorf("%w: snapshot cross-ref count", ErrCorrupt)
	}
	body = body[n:]
	for i := uint64(0); i < xrefCount; i++ {
		ref, err := decodeSnapshotXRef(&body)
		if err != nil {
			return fmt.Errorf("%w: snapshot cross-ref %d: %v", ErrCorrupt, i, err)
		}
		s.xrefs = append(s.xrefs, ref)
	}
	if len(body) != 0 {
		return fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(body))
	}
	s.nextID = model.WorkID(nextID)
	// Guard against snapshots written before an explicit-ID Put raised
	// nextID: never hand out an ID that is already taken.
	for id := range s.works {
		if id >= s.nextID {
			s.nextID = id + 1
		}
	}
	return nil
}

func decodeSnapshotXRef(body *[]byte) (CrossRef, error) {
	var ref CrossRef
	from, n, err := model.DecodeAuthor(*body)
	if err != nil {
		return ref, err
	}
	*body = (*body)[n:]
	to, n, err := model.DecodeAuthor(*body)
	if err != nil {
		return ref, err
	}
	*body = (*body)[n:]
	ref.From, ref.To = from, to
	return ref, nil
}

func (s *Store) syncDirLocked() error {
	d, err := s.fs.Open(s.dir)
	if err != nil {
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	// Even the close is checked: the degrade-on-any-failure policy has
	// no carve-outs, and a kernel that fails close(dirfd) is not one to
	// keep writing through.
	if err := d.Close(); err != nil {
		return fmt.Errorf("storage: sync dir close: %w", err)
	}
	return nil
}
