package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/wal"
)

func batchWorks(n int) []*model.Work {
	out := make([]*model.Work, n)
	for i := range out {
		out[i] = work(fmt.Sprintf("Batch Work %03d", i), 90, i+1, 1988, fmt.Sprintf("Fam%02d", i%7))
	}
	return out
}

// TestReserveBatchIDsMatchesPutBatch: reservation assigns exactly the
// IDs PutBatch would — zero IDs interleaved with explicit ones included
// — and a batch committed under reserved IDs lands on them; abandoning
// a reservation just leaves a gap in the sequence.
func TestReserveBatchIDsMatchesPutBatch(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Put(work("Seed", 1, 1, 1980)); err != nil {
		t.Fatal(err)
	}
	// Zero, explicit-high, zero: sequential-Put assignment is 2, 50, 51.
	mixed := batchWorks(3)
	mixed[1].ID = 50
	ids, err := s.ReserveBatchIDs(mixed)
	if err != nil {
		t.Fatalf("ReserveBatchIDs: %v", err)
	}
	if ids[0] != 2 || ids[1] != 50 || ids[2] != 51 {
		t.Errorf("reserved ids = %v, want [2 50 51]", ids)
	}
	for i := range mixed {
		if mixed[i].ID != 0 && i != 1 {
			t.Errorf("ReserveBatchIDs mutated works[%d].ID = %d", i, mixed[i].ID)
		}
		mixed[i].ID = ids[i]
	}
	got, err := s.PutBatch(mixed)
	if err != nil {
		t.Fatalf("PutBatch under reserved IDs: %v", err)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Errorf("committed ids[%d] = %d, want reserved %d", i, got[i], ids[i])
		}
	}
	// Abandon a reservation: the next zero-ID put skips the gap.
	if _, err := s.ReserveBatchIDs(batchWorks(2)); err != nil {
		t.Fatal(err)
	}
	id, err := s.Put(work("After Gap", 2, 1, 1981))
	if err != nil {
		t.Fatal(err)
	}
	if id != 54 {
		t.Errorf("post-gap id = %d, want 54", id)
	}
	// Invalid works fail reservation before the counter moves.
	bad := batchWorks(2)
	bad[1].Title = ""
	if _, err := s.ReserveBatchIDs(bad); err == nil {
		t.Error("ReserveBatchIDs accepted an invalid work")
	}
	id, err = s.Put(work("Counter Unmoved", 2, 2, 1981))
	if err != nil {
		t.Fatal(err)
	}
	if id != 55 {
		t.Errorf("id after failed reservation = %d, want 55", id)
	}
}

func TestPutBatchAssignsSequentialIDs(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Put(work("Seed", 1, 1, 1980)); err != nil {
		t.Fatal(err)
	}
	ids, err := s.PutBatch(batchWorks(5))
	if err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	for i, id := range ids {
		if want := model.WorkID(i + 2); id != want {
			t.Errorf("ids[%d] = %d, want %d", i, id, want)
		}
		if _, ok := s.Get(id); !ok {
			t.Errorf("work %d missing after batch", id)
		}
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d, want 6", s.Len())
	}
	// Explicit IDs overwrite, mixed with zero IDs, like sequential Puts.
	mixed := batchWorks(3)
	mixed[0].ID = 2  // overwrite
	mixed[1].ID = 50 // explicit insert, raises nextID
	ids, err = s.PutBatch(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 2 || ids[1] != 50 || ids[2] != 51 {
		t.Errorf("mixed batch ids = %v, want [2 50 51]", ids)
	}
	if got, _ := s.Get(2); got.Title != mixed[0].Title {
		t.Errorf("overwrite lost: %q", got.Title)
	}
}

func TestPutBatchGroupCommitCounters(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{}) // fsync on every commit
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := s.Stats()
	if _, err := s.PutBatch(batchWorks(32)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if got := st.BatchesCommitted - before.BatchesCommitted; got != 1 {
		t.Errorf("BatchesCommitted delta = %d, want 1", got)
	}
	if got := st.FsyncsSaved - before.FsyncsSaved; got != 31 {
		t.Errorf("FsyncsSaved delta = %d, want 31", got)
	}
	if got := st.WALSyncs - before.WALSyncs; got != 1 {
		t.Errorf("a 32-work batch issued %d fsyncs, want exactly 1", got)
	}
}

func TestPutBatchFailureLeavesStoreUnchanged(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	base := batchWorks(3)
	if _, err := s.PutBatch(base); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	bad := batchWorks(4)
	bad[2].Title = "" // fails validation
	if _, err := s.PutBatch(bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	after := s.Stats()
	if after.Works != before.Works || after.NextID != before.NextID {
		t.Errorf("failed batch mutated store: %+v -> %+v", before, after)
	}
	if after.WALBytes != before.WALBytes {
		t.Errorf("failed batch wrote %d WAL bytes", after.WALBytes-before.WALBytes)
	}
	if after.BatchesCommitted != before.BatchesCommitted {
		t.Error("failed batch counted as committed")
	}
	// The next assigned ID must be unaffected by the failed batch.
	id, err := s.Put(work("After Failure", 1, 1, 1990))
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 {
		t.Errorf("post-failure Put got ID %d, want 4", id)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// And recovery must agree.
	s2 := openT(t, dir)
	defer s2.Close()
	if s2.Len() != 4 {
		t.Errorf("recovered %d works, want 4", s2.Len())
	}
}

func TestPutBatchReplaysAfterReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, err := s.Put(work("Single A", 1, 1, 1980)); err != nil {
		t.Fatal(err)
	}
	ids, err := s.PutBatch(batchWorks(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ids[3]); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteBatch([]model.WorkID{ids[0], ids[7]}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	if s2.Len() != 8 {
		t.Fatalf("recovered %d works, want 8", s2.Len())
	}
	for _, id := range []model.WorkID{ids[0], ids[3], ids[7]} {
		if _, ok := s2.Get(id); ok {
			t.Errorf("deleted work %d resurrected by replay", id)
		}
	}
	for _, id := range []model.WorkID{1, ids[1], ids[9]} {
		if _, ok := s2.Get(id); !ok {
			t.Errorf("work %d lost in replay", id)
		}
	}
}

// A batch is one WAL frame — the crash-atomicity unit — so a batch
// that would not fit one frame is rejected whole, never split into
// frames a torn tail could partially surface.
func TestPutBatchOversizeRejectedAtomically(t *testing.T) {
	old := batchFrameBytes
	batchFrameBytes = 200
	defer func() { batchFrameBytes = old }()

	dir := t.TempDir()
	s, err := Open(dir, Options{WAL: wal.Options{NoSync: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.PutBatch(batchWorks(1)); err != nil {
		t.Fatalf("small batch within the cap rejected: %v", err)
	}
	before := s.Stats()
	if _, err := s.PutBatch(batchWorks(20)); err == nil {
		t.Fatal("oversize batch accepted")
	}
	after := s.Stats()
	if after.Works != before.Works || after.NextID != before.NextID || after.WALBytes != before.WALBytes {
		t.Errorf("rejected oversize batch mutated the store: %+v -> %+v", before, after)
	}
	// Oversize DeleteBatch is rejected the same way.
	manyIDs := make([]model.WorkID, 300)
	for i := range manyIDs {
		manyIDs[i] = 1 // exists; payload length is what matters
	}
	if err := s.DeleteBatch(manyIDs); err == nil {
		t.Fatal("oversize delete batch accepted")
	}
	if s.Len() != before.Works {
		t.Error("rejected oversize delete mutated the store")
	}
}

func TestDeleteBatchMissingIDUnchanged(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	ids, err := s.PutBatch(batchWorks(4))
	if err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	err = s.DeleteBatch([]model.WorkID{ids[0], 999})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("DeleteBatch with missing id: %v", err)
	}
	after := s.Stats()
	if after.Works != before.Works || after.WALBytes != before.WALBytes {
		t.Error("failed DeleteBatch mutated the store")
	}
	if _, ok := s.Get(ids[0]); !ok {
		t.Error("failed DeleteBatch removed a work")
	}
}

func TestBatchOpsAfterClose(t *testing.T) {
	s := openT(t, t.TempDir())
	s.Close()
	if _, err := s.PutBatch(batchWorks(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("PutBatch after close: %v", err)
	}
	if err := s.DeleteBatch([]model.WorkID{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("DeleteBatch after close: %v", err)
	}
}

func TestPutBatchTriggersCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{WAL: wal.Options{NoSync: true}, CompactEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutBatch(batchWorks(10)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SnapshotBytes == 0 {
		t.Error("batch of 10 with CompactEvery=8 did not compact")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{WAL: wal.Options{NoSync: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 10 {
		t.Errorf("recovered %d works via snapshot, want 10", s2.Len())
	}
}

// copyStoreDir clones a store directory (snapshot + WAL segments) so a
// crash test can mutilate the copy while keeping the master intact.
func copyStoreDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// lastSegment returns the path of the newest WAL segment under dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	walDir := filepath.Join(dir, walSubdir)
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range entries {
		if !e.IsDir() && e.Name() > last {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatal("no WAL segments")
	}
	return filepath.Join(walDir, last)
}

// TestCrashRecoveryBatchTornTailEveryOffset is the batched-write crash
// sweep: a store holding three committed singles plus one batch of ten
// is "crashed" by truncating the final WAL record — the batch frame —
// at every byte offset. Recovery must always see either the full batch
// (only when nothing was torn) or none of it; a partial batch must
// never become visible.
func TestCrashRecoveryBatchTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	s, err := Open(master, Options{WAL: wal.Options{NoSync: true}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Put(work(fmt.Sprintf("Committed %d", i), 10, i+1, 1975)); err != nil {
			t.Fatal(err)
		}
	}
	preBatchLen, err := os.Stat(lastSegment(t, master))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutBatch(batchWorks(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := lastSegment(t, master)
	segData, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	batchStart := preBatchLen.Size()
	if int64(len(segData)) <= batchStart {
		t.Fatalf("batch frame not in final segment: %d <= %d", len(segData), batchStart)
	}
	for cut := batchStart; cut <= int64(len(segData)); cut++ {
		dir := copyStoreDir(t, master)
		if err := os.Truncate(lastSegment(t, dir), cut); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{WAL: wal.Options{NoSync: true}})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		got := s2.Len()
		want := 3
		if cut == int64(len(segData)) {
			want = 13
		}
		if got != want {
			t.Fatalf("cut=%d: recovered %d works, want %d (partial batch visible?)", cut, got, want)
		}
		for i := model.WorkID(1); i <= 3; i++ {
			if _, ok := s2.Get(i); !ok {
				t.Fatalf("cut=%d: committed work %d lost", cut, i)
			}
		}
		// The recovered store must accept new writes.
		if _, err := s2.Put(work("Post Crash", 11, 1, 1990)); err != nil {
			t.Fatalf("cut=%d: post-recovery Put: %v", cut, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRecoveryDeleteBatchTornTail: a torn DeleteBatch frame must
// leave every deleted work alive — deletes are as atomic as puts.
func TestCrashRecoveryDeleteBatchTornTail(t *testing.T) {
	master := t.TempDir()
	s, err := Open(master, Options{WAL: wal.Options{NoSync: true}})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s.PutBatch(batchWorks(6))
	if err != nil {
		t.Fatal(err)
	}
	preDelete, err := os.Stat(lastSegment(t, master))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteBatch(ids[:4]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := lastSegment(t, master)
	segData, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := preDelete.Size(); cut <= int64(len(segData)); cut++ {
		dir := copyStoreDir(t, master)
		if err := os.Truncate(lastSegment(t, dir), cut); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{WAL: wal.Options{NoSync: true}})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		want := 6
		if cut == int64(len(segData)) {
			want = 2
		}
		if got := s2.Len(); got != want {
			t.Fatalf("cut=%d: recovered %d works, want %d", cut, got, want)
		}
		s2.Close()
	}
}
