package storage

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/fault"
	"repro/internal/model"
)

// openFault opens a durable store whose write path goes through the
// given injector.
func openFault(t *testing.T, dir string, in *fault.Injector) *Store {
	t.Helper()
	s, err := Open(dir, Options{FS: in})
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	return s
}

// TestFaultCompactRenameCleansTemp is the regression test for the
// orphaned snapshot.tmp: a failed rename must remove the temp file,
// degrade the store, and leave the previous snapshot + WAL intact so a
// reopen recovers every committed work.
func TestFaultCompactRenameCleansTemp(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(nil)
	s := openFault(t, dir, in)
	for i := 0; i < 3; i++ {
		if _, err := s.Put(work("W", 1, i+1, 2000, "Alpha")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	in.Arm()
	in.Fail(fault.Rule{Op: fault.OpRename, Nth: 1, Err: syscall.EXDEV})
	if err := s.Compact(); !errors.Is(err, syscall.EXDEV) {
		t.Fatalf("compact = %v, want EXDEV", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotTmp)); !os.IsNotExist(err) {
		t.Fatalf("snapshot.tmp left behind after failed rename (stat err %v)", err)
	}
	if deg, _ := s.Degraded(); !deg {
		t.Fatal("failed compaction rename did not degrade the store")
	}
	if _, err := s.Put(work("X", 1, 9, 2000, "Beta")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("put after degrade = %v, want ErrDegraded", err)
	}
	// Reads keep serving on the degraded handle.
	if s.Len() != 3 {
		t.Fatalf("degraded Len = %d, want 3", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close degraded store: %v", err)
	}

	// Clean reopen: all three committed works recover from the old
	// snapshot + WAL, and the latch is gone.
	s2 := openT(t, dir)
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", s2.Len())
	}
	if deg, _ := s2.Degraded(); deg {
		t.Fatal("reopened store inherited the degraded latch")
	}
	if _, err := s2.Put(work("Y", 2, 1, 2001, "Gamma")); err != nil {
		t.Fatalf("put after reopen: %v", err)
	}
}

// TestFaultDegradedRejectsEveryWrite latches the store via a WAL fsync
// failure and checks that every write entry point fails fast with
// ErrDegraded while reads and Stats keep working.
func TestFaultDegradedRejectsEveryWrite(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(nil)
	s := openFault(t, dir, in)
	defer s.Close()
	id, err := s.Put(work("Kept", 1, 1, 2000, "Alpha"))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	xref := CrossRef{From: work("a", 1, 1, 2000, "Twain").Authors[0], To: work("b", 1, 1, 2000, "Clemens").Authors[0]}
	if err := s.AddCrossRef(xref); err != nil {
		t.Fatalf("xref: %v", err)
	}

	in.Arm()
	in.Fail(fault.Rule{Op: fault.OpSync, Nth: 1, Err: syscall.EIO})
	if _, err := s.Put(work("Doomed", 1, 2, 2000, "Beta")); err == nil {
		t.Fatal("put with failing fsync succeeded")
	}
	if deg, cause := s.Degraded(); !deg || !errors.Is(cause, syscall.EIO) {
		t.Fatalf("Degraded = (%v, %v), want latched EIO", deg, cause)
	}

	writes := []struct {
		name string
		op   func() error
	}{
		{"Put", func() error { _, err := s.Put(work("n", 1, 3, 2000, "C")); return err }},
		{"Delete", func() error { return s.Delete(id) }},
		{"PutBatch", func() error { _, err := s.PutBatch([]*model.Work{work("n", 1, 4, 2000, "D")}); return err }},
		{"DeleteBatch", func() error { return s.DeleteBatch([]model.WorkID{id}) }},
		{"ReserveBatchIDs", func() error { _, err := s.ReserveBatchIDs([]*model.Work{work("n", 1, 5, 2000, "E")}); return err }},
		{"AddCrossRef", func() error { return s.AddCrossRef(xref) }},
		{"DeleteCrossRef", func() error { return s.DeleteCrossRef(xref) }},
		{"Compact", func() error { return s.Compact() }},
	}
	for _, w := range writes {
		if err := w.op(); !errors.Is(err, ErrDegraded) {
			t.Errorf("%s on degraded store = %v, want ErrDegraded", w.name, err)
		}
	}

	// Reads and the committed state are untouched.
	if got, ok := s.Get(id); !ok || got.Title != "Kept" {
		t.Fatalf("degraded Get = %v,%v", got, ok)
	}
	if len(s.CrossRefs()) != 1 {
		t.Fatalf("degraded CrossRefs = %d, want 1", len(s.CrossRefs()))
	}
	st := s.Stats()
	if !st.Degraded || st.DegradedReason == "" {
		t.Fatalf("stats not reporting degradation: %+v", st)
	}
	// Trigger + the 8 rejected writes above.
	if st.DegradedWrites != 9 {
		t.Fatalf("DegradedWrites = %d, want 9", st.DegradedWrites)
	}
}

// TestFaultAutoCompactFailureKeepsCommit checks that a put whose
// follow-on automatic compaction fails is still reported as committed:
// the data is durable, the store degrades instead of lying about the
// commit, and the work survives a reopen.
func TestFaultAutoCompactFailureKeepsCommit(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(nil)
	s, err := Open(dir, Options{FS: in, CompactEvery: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := s.Put(work("First", 1, 1, 2000, "Alpha")); err != nil {
		t.Fatalf("put 1: %v", err)
	}
	in.Arm()
	// The second put trips CompactEvery; fail the snapshot temp create.
	in.Fail(fault.Rule{Op: fault.OpCreate, Nth: 1, Err: syscall.ENOSPC})
	id, err := s.Put(work("Second", 1, 2, 2000, "Beta"))
	if err != nil {
		t.Fatalf("put whose auto-compact failed must still report success, got %v", err)
	}
	if deg, cause := s.Degraded(); !deg || !errors.Is(cause, syscall.ENOSPC) {
		t.Fatalf("Degraded = (%v, %v), want latched ENOSPC", deg, cause)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	if got, ok := s2.Get(id); !ok || got.Title != "Second" {
		t.Fatalf("committed-then-degraded work lost on reopen: %v,%v", got, ok)
	}
}
