package storage

import (
	"sort"
	"testing"
)

// TestWorksBulkLoadHandOff: Works must return every stored work exactly
// once, and the returned references must stay stable (read-only shared
// records) across later store mutations — the hand-off contract the
// engine's LoadAll relies on.
func TestWorksBulkLoadHandOff(t *testing.T) {
	s := openT(t, "")
	defer s.Close()
	for i := 0; i < 40; i++ {
		if _, err := s.Put(work("Bulk Title", 70, i+1, 1967, "Family")); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Works()
	if len(got) != 40 {
		t.Fatalf("Works returned %d works, want 40", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i].ID < got[j].ID })
	seen := map[uint64]bool{}
	for _, w := range got {
		if seen[uint64(w.ID)] {
			t.Fatalf("duplicate ID %d in Works", w.ID)
		}
		seen[uint64(w.ID)] = true
	}
	// Replacing and deleting in the store must not disturb the handed-out
	// references: Put swaps in a fresh record rather than mutating.
	victim := got[0]
	repl := work("Replacement", 71, 5, 1968, "Other")
	repl.ID = victim.ID
	if _, err := s.Put(repl); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(got[1].ID); err != nil {
		t.Fatal(err)
	}
	if victim.Title != "Bulk Title" || got[1].Title != "Bulk Title" {
		t.Fatal("store mutation changed a handed-out work in place")
	}
	fresh, ok := s.Get(victim.ID)
	if !ok || fresh.Title != "Replacement" {
		t.Fatalf("store did not apply the replacement: %+v", fresh)
	}
}
