// Package authorindex is a bibliographic author-index engine: it stores
// works (title, authors, citation), maintains an alphabetized author
// index with publication-grade collation, answers author/title/citation
// queries, and renders the index in the classic printed formats.
//
// It is the system behind proceedings front matter such as a conference
// "Author Index": the machinery that a publisher runs to produce and
// serve that artifact. The engine is crash-safe (write-ahead log +
// snapshots), stdlib-only and safe for concurrent use.
//
// Quick start:
//
//	ix, err := authorindex.Open("", nil) // in-memory; pass a dir for durability
//	if err != nil { ... }
//	defer ix.Close()
//
//	id, err := ix.Add(authorindex.Work{
//		Title:    "Unlocking the Fire",
//		Authors:  []authorindex.Author{{Family: "Lewin", Given: "Jeff L."}},
//		Citation: authorindex.Citation{Volume: 94, Page: 563, Year: 1992},
//	})
//
//	entry, ok := ix.Author("Lewin, Jeff L.")
//	results := ix.Search("coalbed methane", 10)
//	err = ix.Render(os.Stdout, authorindex.RenderOptions{Format: authorindex.Text})
package authorindex

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/citeparse"
	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/dedupe"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/names"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Re-exported record types. These aliases are the public data model; see
// the internal/model package for field documentation.
type (
	// Work is one indexed publication.
	Work = model.Work
	// Author is a structured author name.
	Author = model.Author
	// Citation is a volume:page (year) locator.
	Citation = model.Citation
	// WorkID identifies a stored work.
	WorkID = model.WorkID
	// Kind classifies a work (article, student note, ...).
	Kind = model.Kind
	// Volume labels a bound volume for rendering.
	Volume = model.Volume
	// Entry is one author heading with its works and cross-references.
	Entry = core.Entry
	// Section is one letter group of the printed index.
	Section = core.Section
	// RenderOptions configures Render; see the render package fields.
	RenderOptions = render.Options
	// Format selects a render encoding.
	Format = render.Format
	// CollationOptions tunes alphabetization; see DefaultCollation.
	CollationOptions = collate.Options
	// CorpusConfig parameterizes GenerateCorpus.
	CorpusConfig = gen.Config
	// IngestResult reports what an import recovered.
	IngestResult = ingest.Result
	// SubjectCount pairs a subject heading with its work count.
	SubjectCount = query.SubjectCount
	// Suggestion is one candidate duplicate-heading pair.
	Suggestion = dedupe.Suggestion
	// AuthorMetrics is one heading's bibliometrics snapshot.
	AuthorMetrics = metrics.AuthorMetrics
	// MetricsSummary aggregates corpus-level collaboration statistics.
	MetricsSummary = metrics.Summary
	// Collaborator pairs a co-author heading with shared-work count.
	Collaborator = metrics.Collaborator
	// Scheme selects how authorship credit is split by position.
	Scheme = metrics.Scheme
	// RankKey selects the statistic TopAuthors ranks by.
	RankKey = metrics.RankKey
	// GraphSummary aggregates coauthorship-network statistics.
	GraphSummary = graph.Summary
	// CentralAuthor pairs a heading with its network-centrality score.
	CentralAuthor = graph.CentralAuthor
	// Neighbor pairs a co-author heading with the shared-work count.
	Neighbor = graph.Neighbor
)

// Duplicate-suggestion reasons, strongest first.
const (
	SpellingVariant = dedupe.SpellingVariant
	StudentVariant  = dedupe.StudentVariant
	InitialsVariant = dedupe.InitialsVariant
)

// Work kinds.
const (
	KindArticle     = model.KindArticle
	KindStudentNote = model.KindStudentNote
	KindEssay       = model.KindEssay
	KindBookReview  = model.KindBookReview
	KindComment     = model.KindComment
	KindCaseNote    = model.KindCaseNote
	KindTribute     = model.KindTribute
)

// Render formats.
const (
	Text     = render.Text
	TSV      = render.TSV
	Markdown = render.Markdown
	CSV      = render.CSV
	JSON     = render.JSON
	HTMLPage = render.HTMLPage
)

// Credit-weighting schemes for author metrics.
const (
	SchemeHarmonic   = metrics.Harmonic
	SchemeArithmetic = metrics.Arithmetic
	SchemeGeometric  = metrics.Geometric
	SchemeFractional = metrics.Fractional
)

// Ranking keys for TopAuthors.
const (
	ByWorks         = metrics.ByWorks
	ByWeighted      = metrics.ByWeighted
	ByFractional    = metrics.ByFractional
	ByHIndex        = metrics.ByHIndex
	ByCollaborators = metrics.ByCollaborators
	ByFirstAuthored = metrics.ByFirstAuthored
	// ByCentrality ranks by coauthorship-network PageRank.
	ByCentrality = metrics.ByCentrality
)

// DefaultDamping is the PageRank damping factor used when Options
// leaves GraphDamping zero.
const DefaultDamping = graph.DefaultDamping

// MaxLimit bounds every caller-supplied result limit; see ClampLimit.
const MaxLimit = query.MaxLimit

// ClampLimit normalizes a caller-supplied result limit, shared by the
// CLI and HTTP layers: negative values fall back to def, zero ("all")
// and values above MaxLimit clamp to MaxLimit.
func ClampLimit(n, def int) int { return query.ClampLimit(n, def) }

// ParseScheme converts a scheme name ("harmonic", "arithmetic",
// "geometric", "fractional") into a Scheme.
func ParseScheme(s string) (Scheme, error) { return metrics.ParseScheme(s) }

// ParseRankKey converts a rank-key name ("works", "weighted",
// "fractional", "h", "collabs", "first", "central") into a RankKey.
func ParseRankKey(s string) (RankKey, error) { return metrics.ParseRankKey(s) }

// Errors re-exported from the storage layer.
var (
	// ErrNotFound reports a missing work or cross-reference.
	ErrNotFound = storage.ErrNotFound
	// ErrClosed reports use after Close.
	ErrClosed = storage.ErrClosed
	// ErrDegraded reports a write rejected because a write-path I/O
	// failure has latched the index read-only. Reads keep serving the
	// last published snapshots; reopening the index recovers from disk
	// and clears the latch. See Degraded for the cause.
	ErrDegraded = storage.ErrDegraded
)

// DefaultCollation is the conventional index setup: word-by-word
// alphabetization with nobiliary particles grouped (Van Tol files under V).
func DefaultCollation() CollationOptions { return collate.Default() }

// ParseAuthor converts an index-order heading string ("Fisher, John W.,
// II" or "Abdalla, Tarek F.*") into a structured Author.
func ParseAuthor(s string) (Author, error) { return names.Parse(s) }

// FormatAuthor renders an author in canonical index order.
func FormatAuthor(a Author) string { return a.Display() }

// ParseCitation reads "95:1365 (1993)" into a Citation.
func ParseCitation(s string) (Citation, error) { return citeparse.Parse(s) }

// ParseFormat converts a format name ("text", "tsv", "markdown", "csv",
// "json") into a Format.
func ParseFormat(s string) (Format, error) { return render.ParseFormat(s) }

// ParseKind converts a kind name (as produced by Kind.String, e.g.
// "article" or "student-note") back into a Kind.
func ParseKind(s string) (Kind, error) { return model.ParseKind(s) }

// GenerateCorpus produces a deterministic synthetic corpus; see
// CorpusConfig for the knobs. Useful for examples, benchmarks and tests.
func GenerateCorpus(cfg CorpusConfig) []*Work { return gen.Generate(cfg) }

// Options configures Open.
type Options struct {
	// Collation tunes alphabetization. The zero value means
	// DefaultCollation(). Collation is fixed for the life of the on-disk
	// index; reopen with the same options.
	Collation *CollationOptions
	// NoSync skips fsync on each logged operation (faster, loses the
	// most recent writes on power failure, never corrupts).
	NoSync bool
	// CompactEvery auto-compacts after this many logged operations;
	// zero disables automatic compaction.
	CompactEvery int
	// MetricsScheme selects the position-weighting scheme for author
	// credit. The zero value is SchemeHarmonic.
	MetricsScheme Scheme
	// GraphDamping is the PageRank damping factor for network
	// centrality. Zero means DefaultDamping (0.85); values outside
	// (0, 1) are rejected by Open.
	GraphDamping float64
	// IngestBatchSize is the chunk size ImportTSV and ImportCSV feed to
	// AddBatch: each chunk is one group commit (one WAL append, one
	// fsync). Zero means the default of 256; negative values are
	// rejected by Open.
	IngestBatchSize int
	// Shards partitions the engine into this many hash-sharded
	// sub-engines, each with its own writer mutex and copy-on-write
	// snapshot chain, so writes landing on different shards commit in
	// parallel. Zero means 1 (unsharded); negative values or values
	// above MaxShards are rejected by Open. The store is
	// shard-agnostic, so the same directory may be reopened with any
	// shard count.
	Shards int
	// FS is the filesystem seam the durable write path (WAL appends,
	// snapshot compaction) goes through. Nil means the real filesystem.
	// Tests inject a fault.Injector here to exercise the degraded-mode
	// policy; production leaves it nil.
	FS fault.FS
}

// MaxShards bounds Options.Shards.
const MaxShards = 256

// DefaultIngestBatchSize is the import chunk size used when Options
// leaves IngestBatchSize zero.
const DefaultIngestBatchSize = 256

// Stats summarizes index contents and storage footprint.
type Stats struct {
	Works           int    // distinct works
	Authors         int    // distinct headings
	Postings        int    // author–work pairs
	StudentNotes    int    // postings under student headings
	CrossRefs       int    // see-also references
	Terms           int    // distinct title-search terms
	GraphNodes      int    // authors in the coauthorship network
	GraphEdges      int    // distinct collaborating pairs
	GraphComponents int    // connected components (isolated authors included)
	QueriesServed   uint64 // ordered read queries answered since open
	WorksCloned     uint64 // result works deep-copied for callers
	PostingsScanned uint64 // bytes of posting entries examined by queries

	// BatchesCommitted counts group commits applied (AddBatch,
	// DeleteBatch and each import chunk).
	BatchesCommitted int64
	// FsyncsSaved counts WAL commits avoided by batching: a committed
	// batch of N works costs one commit where N single Adds pay N.
	FsyncsSaved int64
	// WALSyncs is the number of fsyncs the WAL actually issued. Always
	// zero in-memory; under NoSync appends stop syncing but segment
	// rotation, explicit Sync and Close still count.
	WALSyncs int64

	// Degraded reports the sticky read-only latch: a write-path I/O
	// failure occurred and every write since fails with ErrDegraded.
	Degraded bool
	// DegradedReason is the I/O error that latched the index, empty
	// while healthy.
	DegradedReason string
	// DegradedWrites counts commits failed or rejected by the latch,
	// the triggering commit included.
	DegradedWrites int64

	WALBytes      int64  // current write-ahead-log size
	SnapshotBytes int64  // last snapshot size
	InMemory      bool   // true when opened without a directory
	Collation     string // collation scheme name
	Shards        int    // hash-partitioned engine shards
}

// Index is an open author-index engine. All methods are safe for
// concurrent use: the corpus is hash-partitioned across engine shards
// (Options.Shards; one by default), writes lock only their home shard
// and commit by publishing a fresh copy-on-write snapshot of it, and
// reads pin each shard's current snapshot and run entirely lock-free
// (see snapshot.go and internal/shard), so a slow reader never stalls
// a writer, a write burst never convoys readers, and writes on
// different shards never contend with each other. Cross-shard
// atomicity is relaxed for reads only: a multi-shard batch commits or
// rolls back as a unit, but its per-shard snapshots publish
// sequentially, so a concurrent reader may briefly see the batch on
// some shards and not yet on others (see AddBatch).
type Index struct {
	store       *storage.Store
	coll        CollationOptions
	ingestBatch int

	// shards is the partitioned engine: every work has one home shard
	// (hashed by ID; cross-references hash by heading collation key),
	// each shard carries its own snapshot chain and writer mutex, and
	// global operations (Verify, Close, tracker rebuilds) exclude all
	// writers at once through the map's writer gate.
	shards *shard.Map

	// swapHists records, per shard, the copy-on-write turnover latency
	// each write pays (clone + path-copied mutation + pointer swap).
	// Bound to a registry by RegisterMetrics, like ops.
	swapHists atomic.Pointer[[]*obs.Histogram]

	// ops holds the per-operation latency histograms. Open points them
	// at obs.Default; RegisterMetrics swaps in a set bound to another
	// registry. Atomic so a swap never races with a recording read.
	ops atomic.Pointer[opSet]
}

// Public operations timed into authdex_op_duration_seconds{op=...}.
type op int

const (
	opSearch op = iota
	opYearRange
	opBySubject
	opGet
	opAdd
	opAddBatch
	opDelete
	opRender
	opVerify
	opOpen
	numOps
)

var opNames = [numOps]string{
	"search", "year_range", "by_subject", "get", "add",
	"add_batch", "delete", "render", "verify", "open",
}

type opSet [numOps]*obs.Histogram

// timeOp starts a latency measurement for one public operation; the
// returned func records it. Usage: defer ix.timeOp(opSearch)().
func (ix *Index) timeOp(o op) func() {
	h := ix.ops.Load()[o]
	start := time.Now()
	return func() { h.Since(start) }
}

// RegisterMetrics points the index's telemetry at r: per-operation
// latency histograms (authdex_op_duration_seconds) plus callback
// metrics promoting the Stats counters — queries served, works cloned,
// postings scanned, batches committed, WAL fsyncs, fsyncs saved — and
// corpus-size gauges. Open registers on obs.Default automatically;
// call this only to target a different registry (servers and tests
// do). Safe to call again: callbacks are replaced, histograms are
// swapped atomically.
func (ix *Index) RegisterMetrics(r *obs.Registry) {
	var set opSet
	for i := range set {
		set[i] = r.Histogram("authdex_op_duration_seconds",
			"Latency of public index operations.", "op", opNames[i])
	}
	ix.ops.Store(&set)

	counter := func(name, help string, f func(Stats) float64) {
		r.CounterFunc(name, help, func() float64 { return f(ix.Stats()) })
	}
	gauge := func(name, help string, f func(Stats) float64) {
		r.GaugeFunc(name, help, func() float64 { return f(ix.Stats()) })
	}
	counter("authdex_queries_served_total", "Ordered read queries answered since open.",
		func(s Stats) float64 { return float64(s.QueriesServed) })
	counter("authdex_works_cloned_total", "Result works deep-copied for callers.",
		func(s Stats) float64 { return float64(s.WorksCloned) })
	counter("authdex_postings_scanned_total", "Bytes of posting entries examined by queries.",
		func(s Stats) float64 { return float64(s.PostingsScanned) })
	counter("authdex_batches_committed_total", "Group commits applied.",
		func(s Stats) float64 { return float64(s.BatchesCommitted) })
	counter("authdex_wal_syncs_total", "fsyncs the WAL issued.",
		func(s Stats) float64 { return float64(s.WALSyncs) })
	counter("authdex_fsyncs_saved_total", "WAL commits avoided by group commit.",
		func(s Stats) float64 { return float64(s.FsyncsSaved) })
	counter("authdex_degraded_commits_total", "Commits failed or rejected by the degraded latch.",
		func(s Stats) float64 { return float64(s.DegradedWrites) })
	gauge("authdex_degraded", "1 while the index is latched read-only after a write-path I/O failure.",
		func(s Stats) float64 {
			if s.Degraded {
				return 1
			}
			return 0
		})
	gauge("authdex_works", "Distinct works stored.",
		func(s Stats) float64 { return float64(s.Works) })
	gauge("authdex_authors", "Distinct author headings.",
		func(s Stats) float64 { return float64(s.Authors) })
	gauge("authdex_postings", "Author-work pairs indexed.",
		func(s Stats) float64 { return float64(s.Postings) })
	gauge("authdex_wal_bytes", "Current write-ahead-log size.",
		func(s Stats) float64 { return float64(s.WALBytes) })
	gauge("authdex_snapshot_bytes", "Last snapshot size.",
		func(s Stats) float64 { return float64(s.SnapshotBytes) })
	hs := make([]*obs.Histogram, ix.shards.N())
	for i := range hs {
		hs[i] = r.Histogram("authdex_snapshot_swap_duration_seconds",
			"Copy-on-write snapshot turnover latency per committed write (engine clone, path-copied mutation, pointer swap).",
			"shard", strconv.Itoa(i))
	}
	ix.swapHists.Store(&hs)
	for i := 0; i < ix.shards.N(); i++ {
		s := ix.shards.Shard(i)
		r.GaugeFunc("authdex_shard_works", "Works indexed on one shard.",
			func() float64 {
				ep := s.Pin()
				defer ep.Release()
				return float64(ep.Eng.Len())
			}, "shard", strconv.Itoa(i))
	}
	r.GaugeFunc("authdex_arena_dead_slots",
		"Removed works still referenced by bulk-load arena slabs, awaiting compaction.",
		func() float64 {
			dead := 0
			for _, s := range ix.shards.All() {
				ep := s.Pin()
				_, d := ep.Eng.ArenaStats()
				ep.Release()
				dead += d
			}
			return float64(dead)
		})
	r.GaugeFunc("authdex_epochs_alive",
		"Engine snapshot epochs not yet reclaimed; equals the shard count when quiescent.",
		func() float64 { return float64(ix.EpochsAlive()) })
}

// engineAddFault, when non-nil, is consulted by the write path after
// the store has durably accepted a work but before the engine indexes
// it. Tests use it to force the store-succeeded/engine-failed window
// and assert the rollback; production never sets it.
var engineAddFault func(*Work) error

// Open opens (creating if necessary) an index rooted at dir. An empty
// dir gives a volatile in-memory index. opts may be nil for defaults.
func Open(dir string, opts *Options) (*Index, error) {
	start := time.Now()
	var o Options
	if opts != nil {
		o = *opts
	}
	coll := collate.Default()
	if o.Collation != nil {
		coll = *o.Collation
	}
	if !o.MetricsScheme.Valid() {
		return nil, fmt.Errorf("authorindex: invalid metrics scheme %d", o.MetricsScheme)
	}
	// Written to reject NaN too: NaN fails every comparison, so test
	// for the valid range and negate.
	if o.GraphDamping != 0 && !(o.GraphDamping > 0 && o.GraphDamping < 1) {
		return nil, fmt.Errorf("authorindex: graph damping %g outside (0, 1)", o.GraphDamping)
	}
	if o.IngestBatchSize < 0 {
		return nil, fmt.Errorf("authorindex: negative ingest batch size %d", o.IngestBatchSize)
	}
	if o.IngestBatchSize == 0 {
		o.IngestBatchSize = DefaultIngestBatchSize
	}
	if o.Shards < 0 || o.Shards > MaxShards {
		return nil, fmt.Errorf("authorindex: shard count %d outside [0, %d]", o.Shards, MaxShards)
	}
	nShards := o.Shards
	if nShards == 0 {
		nShards = 1
	}
	st, err := storage.Open(dir, storage.Options{
		WAL:          wal.Options{NoSync: o.NoSync},
		CompactEvery: o.CompactEvery,
		FS:           o.FS,
	})
	if err != nil {
		return nil, err
	}
	// The seed engine owns the metrics tracker, coauthorship graph and
	// query counters; peer engines on the other shards share those
	// trackers (trackers are corpus-global, not per-shard) while keeping
	// their own index trees.
	seed := query.NewWithScheme(coll, o.MetricsScheme)
	if o.GraphDamping != 0 {
		seed.Graph().SetDamping(o.GraphDamping)
	}
	ix := &Index{store: st, coll: coll, ingestBatch: o.IngestBatchSize}
	ix.shards = shard.New(nShards, func(i int) *query.Engine {
		if i == 0 {
			return seed
		}
		return seed.NewPeer()
	})
	// Cold start is a bulk load, not a replay: the store hands the whole
	// decoded corpus to the engines as shared read-only records (neither
	// side ever mutates a stored work in place), and each shard builds
	// its indexes bottom-up over its partition. The heads were published
	// by shard.New before the index is visible to any reader, so loading
	// them in place is unobservable — every read path pins an epoch, and
	// none can exist yet.
	works := st.Works()
	if nShards == 1 {
		if err := seed.LoadAll(works); err != nil {
			st.Close()
			return nil, fmt.Errorf("authorindex: rebuild from store: %w", err)
		}
	} else {
		parts := make([][]*model.Work, nShards)
		for _, w := range works {
			si := ix.shards.ForWork(w.ID)
			parts[si] = append(parts[si], w)
		}
		for i, s := range ix.shards.All() {
			if err := s.Head().LoadCorpus(context.Background(), parts[i]); err != nil {
				st.Close()
				return nil, fmt.Errorf("authorindex: rebuild shard %d from store: %w", i, err)
			}
		}
		// The shared trackers rebuild once over the whole corpus, not
		// once per shard.
		seed.RebuildTrackers(works)
	}
	if refs := st.CrossRefs(); len(refs) > 0 {
		groups := make([][]core.SeeAlsoRef, nShards)
		for _, ref := range refs {
			si := ix.shards.ForKey(collate.KeyAuthor(ref.From, coll))
			groups[si] = append(groups[si], core.SeeAlsoRef{From: ref.From, To: ref.To})
		}
		for i, s := range ix.shards.All() {
			if len(groups[i]) == 0 {
				continue
			}
			if err := s.Head().Index().AddSeeAlsoBatch(groups[i]); err != nil {
				st.Close()
				return nil, fmt.Errorf("authorindex: restore cross-refs: %w", err)
			}
		}
	}
	ix.RegisterMetrics(obs.Default)
	ix.ops.Load()[opOpen].Since(start)
	return ix, nil
}

// Add validates and stores a work, files it in every index, and returns
// its assigned ID. A zero w.ID gets the next free ID; a non-zero ID
// inserts or replaces.
//
// If the engine rejects a work the store already accepted, the store
// mutation is rolled back — a fresh work is deleted, an overwrite is
// restored to the previous version — before the error returns, so
// storage and indexes can never diverge. (The window is defensive: the
// store and engine run the same validation, so an engine-only failure
// should be impossible.)
func (ix *Index) Add(w Work) (WorkID, error) {
	return ix.AddCtx(context.Background(), w)
}

// engAdd indexes one stored work into the writer's not-yet-published
// clone, honoring the test-only fault hook.
func (ix *Index) engAdd(eng *query.Engine, w *Work) error {
	if engineAddFault != nil {
		if err := engineAddFault(w); err != nil {
			return err
		}
	}
	return eng.Add(w)
}

// AddBatch validates and stores N works under a single lock acquisition
// and a single group commit: one WAL append, one fsync (under the
// default durable configuration) for the whole batch, then one
// amortized indexing pass. IDs are assigned exactly as N sequential
// Adds would assign them and returned in input order.
//
// Durability and rollback are all-or-nothing: an invalid work anywhere
// in the batch, a WAL error, or an engine failure leaves storage,
// indexes, metrics and the coauthorship graph byte-identical to their
// pre-batch state — works whose explicit IDs overwrote existing
// records are restored to the previous version on rollback. Cross-shard
// read visibility is weaker: with Options.Shards > 1 a committed batch
// publishes its per-shard snapshots one shard at a time, so a reader
// pinning between publishes can briefly observe some shards' portions
// of the batch without the others'. Each shard's portion appears
// atomically, and every read started after AddBatch returns sees the
// whole batch.
func (ix *Index) AddBatch(works []Work) ([]WorkID, error) {
	return ix.AddBatchCtx(context.Background(), works)
}

// rollbackStored undoes a committed PutBatch after an engine failure:
// fresh IDs are deleted, overwritten IDs are restored to the version
// the engine still holds.
func (ix *Index) rollbackStored(ids []WorkID, prev map[WorkID]*model.Work) error {
	var drop []WorkID
	var restore []*model.Work
	for _, id := range uniqueIDs(ids) {
		if old, ok := prev[id]; ok {
			restore = append(restore, old)
		} else {
			drop = append(drop, id)
		}
	}
	if len(drop) > 0 {
		if err := ix.store.DeleteBatch(drop); err != nil {
			return err
		}
	}
	if len(restore) > 0 {
		if _, err := ix.store.PutBatch(restore); err != nil {
			return err
		}
	}
	return nil
}

// undoTrackerAdds reverses the shared-tracker side effects of a group
// that was indexed into a since-discarded clone: the clone's btrees are
// garbage either way, but its AddBatch mutated the metrics and graph
// trackers shared by every shard engine, so each surviving version is
// removed and any work it replaced is re-added. Duplicate explicit IDs
// collapse to the last occurrence inside the engine, so the undo walks
// unique IDs once.
func (ix *Index) undoTrackerAdds(eng *query.Engine, group []*model.Work, prev map[WorkID]*model.Work) {
	done := make(map[WorkID]struct{}, len(group))
	for _, w := range group {
		if _, dup := done[w.ID]; dup {
			continue
		}
		done[w.ID] = struct{}{}
		eng.Remove(w.ID)
		if old, ok := prev[w.ID]; ok {
			// Re-adding a previously indexed work cannot fail.
			_ = eng.Add(old)
		}
	}
}

// engAddBatch indexes a stored batch into the writer's not-yet-published
// clone, honoring the test-only fault hook.
func (ix *Index) engAddBatch(eng *query.Engine, batch []*model.Work) error {
	if engineAddFault != nil {
		for _, w := range batch {
			if err := engineAddFault(w); err != nil {
				return err
			}
		}
	}
	return eng.AddBatch(batch)
}

// uniqueIDs drops duplicate IDs (a batch may legally carry the same
// explicit ID twice) so a rollback DeleteBatch never double-deletes.
func uniqueIDs(ids []WorkID) []WorkID {
	seen := make(map[WorkID]struct{}, len(ids))
	out := ids[:0:0]
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// DeleteBatch removes N works everywhere under a single lock
// acquisition and a single group commit. Every ID must exist; a missing
// ID or a WAL error leaves the index unchanged.
func (ix *Index) DeleteBatch(ids []WorkID) error {
	return ix.DeleteBatchCtx(context.Background(), ids)
}

// Delete removes a work everywhere. ErrNotFound if the ID is unknown.
func (ix *Index) Delete(id WorkID) error {
	return ix.DeleteCtx(context.Background(), id)
}

// Get returns a copy of the stored work. The copy is made after the
// snapshot pin is released: indexed works are immutable, so the
// reference captured from the snapshot stays valid even across a
// concurrent delete.
func (ix *Index) Get(id WorkID) (*Work, bool) {
	return ix.GetCtx(context.Background(), id)
}

// Len returns the number of stored works.
func (ix *Index) Len() int {
	v := ix.shards.PinAll()
	defer v.Release()
	n := 0
	for _, ep := range v.Epochs {
		n += ep.Eng.Len()
	}
	return n
}

// Author looks up one heading by its index-order string. An author
// whose works are spread across shards is assembled from every shard's
// partial entry.
func (ix *Index) Author(heading string) (*Entry, bool) {
	v := ix.shards.PinAll()
	defer v.Release()
	if len(v.Epochs) == 1 {
		return v.Epochs[0].Eng.AuthorExact(heading)
	}
	parts := make([][]*Entry, len(v.Epochs))
	found := false
	for i, ep := range v.Epochs {
		if e, ok := ep.Eng.AuthorExact(heading); ok {
			parts[i] = []*Entry{e}
			found = true
		}
	}
	if !found {
		return nil, false
	}
	return shard.MergeEntries(parts, ix.coll, 0)[0], true
}

// Authors returns up to limit headings starting with prefix, in print
// order (limit <= 0: all).
func (ix *Index) Authors(prefix string, limit int) []*Entry {
	return ix.AuthorsCtx(context.Background(), prefix, limit)
}

// AuthorsPage returns up to limit headings strictly after `after` in
// print order (empty after: from the start). Feed the last entry's
// heading back in as the next cursor to page through the whole index.
func (ix *Index) AuthorsPage(after string, limit int) []*Entry {
	return ix.AuthorsPageCtx(context.Background(), after, limit)
}

// Search evaluates a boolean title query: space-separated terms AND,
// "a or b" OR, "-term" NOT, "term*" prefix. Results are in citation
// order, capped at limit (<=0: no cap).
//
// Search and the other ordered reads (YearRange, VolumeWorks,
// BySubject) take no lock at all: they pin the current engine snapshot
// while collecting live references — already ordered by the engine's
// precomputed citation keys and truncated to limit — release it, and
// deep-copy the survivors, so neither a writer nor another reader is
// ever stalled by a read.
func (ix *Index) Search(q string, limit int) []*Work {
	return ix.SearchCtx(context.Background(), q, limit)
}

// YearRange returns works published in [from, to], citation order.
func (ix *Index) YearRange(from, to, limit int) []*Work {
	return ix.YearRangeCtx(context.Background(), from, to, limit)
}

// VolumeWorks returns every work in the given volume, citation order.
func (ix *Index) VolumeWorks(v, limit int) []*Work {
	return ix.VolumeWorksCtx(context.Background(), v, limit)
}

// Subjects returns every subject heading in collation order with its
// work count, summed across shards.
func (ix *Index) Subjects() []SubjectCount {
	v := ix.shards.PinAll()
	defer v.Release()
	if len(v.Epochs) == 1 {
		return v.Epochs[0].Eng.Subjects()
	}
	parts := shard.Gather(v.Epochs, func(_ int, ep *shard.Epoch) []query.KeyedSubject {
		return ep.Eng.KeyedSubjects()
	})
	return shard.MergeSubjects(parts)
}

// BySubject returns the works filed under a subject heading, matched
// case- and diacritic-insensitively, in citation order.
func (ix *Index) BySubject(subject string, limit int) []*Work {
	return ix.BySubjectCtx(context.Background(), subject, limit)
}

// RenderSubjectIndex writes the subject-index artifact: works grouped
// under their subject headings. Text, TSV and Markdown formats are
// supported. Rendering reads a zero-copy view of a pinned snapshot —
// no lock, and the pin is released before the render runs (indexed
// works are immutable, so the view outlives the pin).
func (ix *Index) RenderSubjectIndex(w io.Writer, opts RenderOptions) error {
	return render.SubjectIndex(w, ix.allWorksView(), ix.coll, opts)
}

// allWorksView concatenates every shard's zero-copy corpus view. The
// pins are released before returning — indexed works are immutable, so
// the views outlive them. Order is per-shard; consumers that need a
// global order (the title and subject renders) sort internally.
func (ix *Index) allWorksView() []*model.Work {
	v := ix.shards.PinAll()
	defer v.Release()
	if len(v.Epochs) == 1 {
		return v.Epochs[0].Eng.AllWorksView()
	}
	var out []*model.Work
	for _, ep := range v.Epochs {
		out = append(out, ep.Eng.AllWorksView()...)
	}
	return out
}

// AddSeeAlso durably records a cross-reference between two headings
// given in index-order form, e.g. ("Mountney, Marion", "Crain-Mountney,
// Marion").
func (ix *Index) AddSeeAlso(from, to string) error {
	fa, err := names.Parse(from)
	if err != nil {
		return fmt.Errorf("authorindex: from heading: %w", err)
	}
	ta, err := names.Parse(to)
	if err != nil {
		return fmt.Errorf("authorindex: to heading: %w", err)
	}
	ix.shards.BeginWrite()
	defer ix.shards.EndWrite()
	// Cross-references live on the shard their From heading hashes to,
	// so a lookup of that heading finds them without a fan-out.
	s := ix.shards.Shard(ix.shards.ForKey(collate.KeyAuthor(fa, ix.coll)))
	s.Lock()
	defer s.Unlock()
	// Mutate a clone, commit to the store, then publish: a store error
	// discards the clone, so engine and store can no longer diverge the
	// way the old engine-first order allowed.
	start := time.Now()
	eng := s.Head().Clone()
	if err := eng.Index().AddSeeAlso(fa, ta); err != nil {
		return err
	}
	if err := ix.store.AddCrossRef(storage.CrossRef{From: fa, To: ta}); err != nil {
		return err
	}
	ix.publish(start, s, eng)
	return nil
}

// AuthorMetrics returns the bibliometrics snapshot for one heading:
// work counts by kind and year, fractional and position-weighted
// credit, productivity h-index and collaboration degree.
func (ix *Index) AuthorMetrics(heading string) (AuthorMetrics, bool) {
	ep := ix.trackerPin()
	defer ep.Release()
	return ep.Eng.AuthorMetrics(heading)
}

// trackerPin pins shard 0 for a metrics or graph read. The trackers
// are corpus-global and shared by every shard's engines, so any shard
// would do; pinning one avoids a pointless fan-out.
func (ix *Index) trackerPin() *shard.Epoch { return ix.shards.Shard(0).Pin() }

// TopAuthors returns up to limit author snapshots ranked by the given
// key, best first. The limit is clamped like every query limit.
func (ix *Index) TopAuthors(by RankKey, limit int) []AuthorMetrics {
	return ix.TopAuthorsCtx(context.Background(), by, limit)
}

// MetricsSummary returns corpus-level collaboration statistics.
func (ix *Index) MetricsSummary() MetricsSummary {
	ep := ix.trackerPin()
	defer ep.Release()
	return ep.Eng.MetricsSummary()
}

// SetMetricsScheme swaps the credit-weighting scheme, rebuilding the
// metrics state from the corpus (O(corpus), a recovery-grade path).
// The trackers are corpus-global, so the rebuild is coordinator-level:
// it excludes every writer, constructs the fresh tracker off to the
// side, and republishes every shard pointing at it — concurrent
// readers never observe a half-built tracker.
func (ix *Index) SetMetricsScheme(s Scheme) error {
	if !s.Valid() {
		return fmt.Errorf("authorindex: invalid metrics scheme %d", s)
	}
	ix.shards.LockAll()
	defer ix.shards.UnlockAll()
	var same bool
	var gr *graph.Graph
	ix.shards.Shard(0).Head().ReadTrackers(func(met metrics.Tracker, g *graph.Graph) {
		same = met.Weighting() == s
		gr = g
	})
	if same {
		return nil
	}
	fresh := metrics.NewEngine(s)
	fresh.Rebuild(ix.headWorks())
	ix.replaceTrackers(fresh, gr)
	return nil
}

// headWorks gathers live references to the whole corpus across shard
// heads. Callers hold the exclusive writer gate.
func (ix *Index) headWorks() []*model.Work {
	var out []*model.Work
	for _, s := range ix.shards.All() {
		out = append(out, s.Head().AllWorksView()...)
	}
	return out
}

// replaceTrackers clones every shard head, points the clones at the
// given tracker pair, and publishes them all — the tail of every
// whole-corpus tracker rebuild. Callers hold the exclusive writer
// gate.
func (ix *Index) replaceTrackers(met metrics.Tracker, gr *graph.Graph) {
	start := time.Now()
	for _, s := range ix.shards.All() {
		eng := s.Head().Clone()
		eng.ReplaceTrackers(met, gr)
		ix.publish(start, s, eng)
	}
}

// RebuildMetrics discards the incrementally maintained metrics state
// and recomputes it from the indexed corpus — the recovery path when
// incremental state is suspect.
func (ix *Index) RebuildMetrics() {
	ix.shards.LockAll()
	defer ix.shards.UnlockAll()
	var scheme Scheme
	var gr *graph.Graph
	ix.shards.Shard(0).Head().ReadTrackers(func(met metrics.Tracker, g *graph.Graph) {
		scheme = met.Weighting()
		gr = g
	})
	fresh := metrics.NewEngine(scheme)
	fresh.Rebuild(ix.headWorks())
	ix.replaceTrackers(fresh, gr)
}

// CollaborationPath returns the shortest coauthorship chain between two
// headings given in index-order form ("Lewin, Jeff L."), endpoints
// included — the Erdős-style distance is len(path)-1. It reports false
// when either heading is unknown or no chain of shared works connects
// them.
func (ix *Index) CollaborationPath(from, to string) ([]string, bool) {
	ep := ix.trackerPin()
	defer ep.Release()
	return ep.Eng.CollaborationPath(from, to)
}

// Centrality returns a heading's PageRank score in the coauthorship
// network; scores across all authors sum to 1.
func (ix *Index) Centrality(heading string) (float64, bool) {
	ep := ix.trackerPin()
	defer ep.Release()
	return ep.Eng.Centrality(heading)
}

// Collaborators returns a heading's co-authors with shared-work counts,
// heaviest first.
func (ix *Index) Collaborators(heading string) []Neighbor {
	ep := ix.trackerPin()
	defer ep.Release()
	return ep.Eng.GraphNeighbors(heading)
}

// GraphSummary returns coauthorship-network aggregates: node, edge and
// component counts, the largest component, density, and the most
// central authors under the configured damping factor.
func (ix *Index) GraphSummary() GraphSummary {
	ep := ix.trackerPin()
	defer ep.Release()
	return ep.Eng.GraphSummary()
}

// TopCentral returns up to limit authors by network centrality, best
// first. The limit is clamped like every query limit.
func (ix *Index) TopCentral(limit int) []CentralAuthor {
	return ix.TopCentralCtx(context.Background(), limit)
}

// RebuildGraph discards the incrementally maintained coauthorship graph
// and recomputes it from the indexed corpus — the recovery path when
// incremental state is suspect.
func (ix *Index) RebuildGraph() {
	ix.shards.LockAll()
	defer ix.shards.UnlockAll()
	var met metrics.Tracker
	var damping float64
	ix.shards.Shard(0).Head().ReadTrackers(func(m metrics.Tracker, g *graph.Graph) {
		met = m
		damping = g.Damping()
	})
	fresh := graph.New(damping)
	fresh.Rebuild(ix.headWorks())
	ix.replaceTrackers(met, fresh)
}

// Sections returns the index grouped by letter, in print order; entries
// are deep copies, merged across shards.
func (ix *Index) Sections() []Section {
	v := ix.shards.PinAll()
	defer v.Release()
	parts := shard.Gather(v.Epochs, func(_ int, ep *shard.Epoch) []Section {
		return ep.Eng.Index().Sections()
	})
	return shard.MergeSections(parts, ix.coll)
}

// Render writes the index to w in the format selected by opts. With
// opts.Statistics set, the Text, Markdown and JSON formats close with a
// contributor-summary appendix built from the metrics tracker; with
// opts.Network set they close with a collaboration-network appendix
// built from the coauthorship graph. The render runs against a pinned
// snapshot; tracker reads take the shared tracker read lock.
func (ix *Index) Render(w io.Writer, opts RenderOptions) error {
	return ix.RenderCtx(context.Background(), w, opts)
}

// RenderTitleIndex writes the companion title-index artifact: works
// alphabetized by title (leading articles ignored) with authors and
// citations. Text, TSV and Markdown formats are supported. Like
// RenderSubjectIndex, it renders from a zero-copy snapshot view.
func (ix *Index) RenderTitleIndex(w io.Writer, opts RenderOptions) error {
	return render.TitleIndex(w, ix.allWorksView(), ix.coll, opts)
}

// RemoveSeeAlso deletes a durable cross-reference previously recorded
// with AddSeeAlso. ErrNotFound if it does not exist.
func (ix *Index) RemoveSeeAlso(from, to string) error {
	fa, err := names.Parse(from)
	if err != nil {
		return fmt.Errorf("authorindex: from heading: %w", err)
	}
	ta, err := names.Parse(to)
	if err != nil {
		return fmt.Errorf("authorindex: to heading: %w", err)
	}
	ix.shards.BeginWrite()
	defer ix.shards.EndWrite()
	// Same home-shard routing and clone-commit-publish order as
	// AddSeeAlso.
	s := ix.shards.Shard(ix.shards.ForKey(collate.KeyAuthor(fa, ix.coll)))
	s.Lock()
	defer s.Unlock()
	start := time.Now()
	eng := s.Head().Clone()
	if !eng.Index().RemoveSeeAlso(fa, ta) {
		return fmt.Errorf("%w: cross-reference %s → %s", ErrNotFound, fa.Display(), ta.Display())
	}
	if err := ix.store.DeleteCrossRef(storage.CrossRef{From: fa, To: ta}); err != nil {
		return err
	}
	ix.publish(start, s, eng)
	return nil
}

// ImportTSV loads postings in the TSV machine format (as produced by
// Render with the TSV format), adding every recovered work and
// cross-reference. It returns the ingest report.
func (ix *Index) ImportTSV(r io.Reader, lenient bool) (*IngestResult, error) {
	res, err := ingest.TSV(r, ingest.Options{Lenient: lenient})
	if err != nil {
		return nil, err
	}
	return res, ix.importResult(res)
}

// ImportCSV loads postings in the CSV format (as produced by Render with
// the CSV format).
func (ix *Index) ImportCSV(r io.Reader, lenient bool) (*IngestResult, error) {
	res, err := ingest.CSV(r, ingest.Options{Lenient: lenient})
	if err != nil {
		return nil, err
	}
	return res, ix.importResult(res)
}

// importResult feeds recovered works through the batched write
// pipeline in IngestBatchSize chunks: each chunk is one lock
// acquisition and one group commit, so a bulk import pays one fsync per
// chunk instead of one per work.
func (ix *Index) importResult(res *ingest.Result) error {
	chunk := make([]Work, 0, min(ix.ingestBatch, len(res.Works)))
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		_, err := ix.AddBatch(chunk)
		chunk = chunk[:0]
		return err
	}
	for _, w := range res.Works {
		cp := *w
		cp.ID = 0 // allocate fresh IDs in this store
		chunk = append(chunk, cp)
		if len(chunk) >= ix.ingestBatch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	for _, ref := range res.CrossRefs {
		if err := ix.AddSeeAlso(ref.From.Display(), ref.To.Display()); err != nil {
			return err
		}
	}
	return nil
}

// Compact writes a snapshot and truncates the write-ahead log.
func (ix *Index) Compact() error {
	ix.shards.LockAll()
	defer ix.shards.UnlockAll()
	return ix.store.Compact()
}

// DuplicateSuggestions scans all headings for pairs that may refer to
// the same person (spelling variants, student/professional pairs,
// initialism variants), ordered by confidence. Editors review the list
// and record see-also references for the real ones.
func (ix *Index) DuplicateSuggestions() []Suggestion {
	v := ix.shards.PinAll()
	var authors []Author
	if len(v.Epochs) == 1 {
		v.Epochs[0].Eng.Index().Ascend(func(e *Entry) bool {
			authors = append(authors, e.Author)
			return true
		})
	} else {
		// A heading can appear on several shards; deduplicate by
		// collation key and restore the global print order the scanner
		// expects.
		type keyed struct {
			key string
			a   Author
		}
		seen := make(map[string]struct{})
		var all []keyed
		for _, ep := range v.Epochs {
			ep.Eng.Index().Ascend(func(e *Entry) bool {
				k := string(collate.KeyAuthor(e.Author, ix.coll))
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					all = append(all, keyed{key: k, a: e.Author})
				}
				return true
			})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
		authors = make([]Author, len(all))
		for i, ka := range all {
			authors[i] = ka.a
		}
	}
	v.Release()
	return dedupe.Suggest(authors)
}

// Verify cross-checks every invariant between the durable store and the
// in-memory indexes: each stored work must be retrievable, filed under
// every one of its authors, findable by title search, and counted once;
// no index may reference a work the store does not hold. It returns nil
// when the index is internally consistent.
//
// Verify takes the exclusive writer gate: it cross-checks the store
// against every shard's head engine, so writers must be excluded for
// the comparison to be meaningful. Lock-free snapshot readers are
// unaffected — they never touch the gate.
func (ix *Index) Verify() error {
	defer ix.timeOp(opVerify)()
	ix.shards.LockAll()
	defer ix.shards.UnlockAll()
	heads := make([]*query.Engine, ix.shards.N())
	for i := range heads {
		heads[i] = ix.shards.Shard(i).Head()
	}
	storeCount := 0
	var storeXor uint64
	err := ix.store.ForEach(func(w *model.Work) error {
		storeCount++
		storeXor ^= query.WorkFingerprint(w)
		home := ix.shards.ForWork(w.ID)
		eng := heads[home]
		got, ok := eng.WorkView(w.ID)
		if !ok {
			return fmt.Errorf("authorindex: verify: stored work %d missing from shard %d", w.ID, home)
		}
		if !got.Equal(w) {
			return fmt.Errorf("authorindex: verify: work %d differs between store and shard %d", w.ID, home)
		}
		for _, a := range w.Authors {
			entry, ok := eng.Index().Lookup(a)
			if !ok {
				return fmt.Errorf("authorindex: verify: work %d not filed under %q", w.ID, a.Display())
			}
			found := false
			for _, filed := range entry.Works {
				if filed.ID == w.ID {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("authorindex: verify: heading %q lacks work %d", a.Display(), w.ID)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	engCount, worksTotal, postings := 0, 0, 0
	var shardXor uint64
	for _, h := range heads {
		st := h.Stats()
		engCount += h.Len()
		worksTotal += st.Works
		postings += st.Postings
		shardXor ^= h.XorFingerprint()
	}
	if engCount != storeCount {
		return fmt.Errorf("authorindex: verify: store holds %d works, shards %d", storeCount, engCount)
	}
	// Per-shard fingerprints XOR-combine into the corpus fingerprint
	// (XOR is commutative, so partitioning cannot change it): the
	// combined value must match the same fold over the store — the
	// fingerprint a from-scratch unsharded rebuild would produce.
	if shardXor != storeXor {
		return fmt.Errorf("authorindex: verify: shard fingerprints fold to %016x, store works to %016x", shardXor, storeXor)
	}
	if worksTotal != storeCount {
		return fmt.Errorf("authorindex: verify: author index counts %d works, store %d", worksTotal, storeCount)
	}
	// The trackers are corpus-global and shared by every shard, so
	// tracker-level checks read one head.
	ms := heads[0].Metrics().Summary()
	if ms.Works != storeCount {
		return fmt.Errorf("authorindex: verify: metrics track %d works, store %d", ms.Works, storeCount)
	}
	if ms.Postings != postings {
		return fmt.Errorf("authorindex: verify: metrics count %d postings, index %d", ms.Postings, postings)
	}
	g := heads[0].Graph()
	if g.Works() != storeCount {
		return fmt.Errorf("authorindex: verify: graph tracks %d works, store %d", g.Works(), storeCount)
	}
	// The graph and the metrics tracker maintain the collaboration
	// structure independently; their node and pair counts must agree.
	if g.Nodes() != ms.Authors {
		return fmt.Errorf("authorindex: verify: graph holds %d nodes, metrics %d authors", g.Nodes(), ms.Authors)
	}
	if g.Edges() != ms.Pairs {
		return fmt.Errorf("authorindex: verify: graph holds %d edges, metrics %d pairs", g.Edges(), ms.Pairs)
	}
	// The incremental graph must be byte-identical to one rebuilt from
	// scratch over the union of every shard's corpus.
	fresh := graph.New(g.Damping())
	for _, h := range heads {
		for _, w := range h.AllWorksView() {
			fresh.Add(w)
		}
	}
	if fresh.Fingerprint() != g.Fingerprint() {
		return fmt.Errorf("authorindex: verify: incremental graph state differs from a from-scratch rebuild")
	}
	return nil
}

// Stats returns current counters. Per-shard counts sum (works,
// postings, cross-references are disjoint across shards); Authors
// counts distinct headings, since one heading's works can spread over
// several shards; Terms is summed per shard, so with several shards it
// is an upper bound on globally distinct terms. Query counters and
// graph counts come from the shared trackers, read once.
func (ix *Index) Stats() Stats {
	v := ix.shards.PinAll()
	defer v.Release()
	e0 := v.Epochs[0].Eng
	var works, authors, postings, students, crossRefs, terms int
	if len(v.Epochs) == 1 {
		es := e0.Stats()
		works, authors, postings = es.Works, es.Authors, es.Postings
		students, crossRefs, terms = es.StudentNotes, es.CrossRefs, es.Terms
	} else {
		seen := make(map[string]struct{})
		for _, ep := range v.Epochs {
			es := ep.Eng.Stats()
			works += es.Works
			postings += es.Postings
			students += es.StudentNotes
			crossRefs += es.CrossRefs
			terms += es.Terms
			ep.Eng.Index().Ascend(func(e *Entry) bool {
				seen[string(collate.KeyAuthor(e.Author, ix.coll))] = struct{}{}
				return true
			})
		}
		authors = len(seen)
	}
	qs := e0.QueryStats()
	ss := ix.store.Stats()
	nodes, edges, components := e0.GraphCounts()
	return Stats{
		Works:           works,
		Authors:         authors,
		Postings:        postings,
		StudentNotes:    students,
		CrossRefs:       crossRefs,
		Terms:           terms,
		GraphNodes:      nodes,
		GraphEdges:      edges,
		GraphComponents: components,
		QueriesServed:   qs.Queries,
		WorksCloned:     qs.WorksCloned,
		PostingsScanned: qs.PostingsBytes,

		BatchesCommitted: ss.BatchesCommitted,
		FsyncsSaved:      ss.FsyncsSaved,
		WALSyncs:         ss.WALSyncs,
		Degraded:         ss.Degraded,
		DegradedReason:   ss.DegradedReason,
		DegradedWrites:   ss.DegradedWrites,

		WALBytes:      ss.WALBytes,
		SnapshotBytes: ss.SnapshotBytes,
		InMemory:      ss.InMemory,
		Collation:     ix.coll.Scheme.String(),
		Shards:        ix.shards.N(),
	}
}

// Degraded reports whether a write-path I/O failure has latched the
// index read-only, and the error that did. Reads keep serving the last
// published snapshot epoch of every shard; writes fail fast with
// ErrDegraded. The latch clears only by reopening the index, which
// recovers from the snapshot and WAL on disk.
func (ix *Index) Degraded() (bool, error) {
	return ix.store.Degraded()
}

// Close flushes and closes the index. Further mutations fail with
// ErrClosed.
func (ix *Index) Close() error {
	ix.shards.LockAll()
	defer ix.shards.UnlockAll()
	return ix.store.Close()
}
